package taskgen

import (
	"math/rand"
	"testing"

	"dpcpp/internal/rt"
)

// TestAdversarialShapesValid draws tasksets of every shape and checks they
// finalize, respect the model's plausibility constraints (enforced by
// Finalize itself) and exhibit the structural property the shape promises.
func TestAdversarialShapesValid(t *testing.T) {
	a := NewAdversarial()
	for _, shape := range Shapes() {
		built := 0
		for seed := int64(0); seed < 30; seed++ {
			r := rand.New(rand.NewSource(seed))
			ts, err := a.TasksetWithShape(r, shape)
			if err != nil {
				continue
			}
			built++
			if ts.NumProcs < 2 {
				t.Fatalf("%s seed %d: %d processors", shape, seed, ts.NumProcs)
			}
			for _, task := range ts.Tasks {
				if task.Deadline > task.Period {
					t.Errorf("%s seed %d: unconstrained deadline", shape, seed)
				}
				switch shape {
				case ShapeChain:
					// A chain's longest path carries the whole WCET.
					if task.LongestPath() != task.WCET() {
						t.Errorf("%s seed %d task %d: L*=%d != C=%d",
							shape, seed, task.ID, task.LongestPath(), task.WCET())
					}
				case ShapeSingleVertex:
					if len(task.Vertices) != 1 {
						t.Errorf("%s seed %d: %d vertices", shape, seed, len(task.Vertices))
					}
				case ShapeForkJoin:
					if len(task.Heads()) != 1 || len(task.Tails()) != 1 {
						t.Errorf("%s seed %d: fork-join needs single source/sink", shape, seed)
					}
				}
			}
		}
		if built == 0 {
			t.Errorf("%s: no taskset built in 30 seeds", shape)
		}
	}
}

// TestAdversarialDeterministic: the generator is a pure function of the
// RNG stream.
func TestAdversarialDeterministic(t *testing.T) {
	a := NewAdversarial()
	for seed := int64(0); seed < 10; seed++ {
		ts1, s1, err1 := a.Taskset(rand.New(rand.NewSource(seed)))
		ts2, s2, err2 := a.Taskset(rand.New(rand.NewSource(seed)))
		if (err1 == nil) != (err2 == nil) || s1 != s2 {
			t.Fatalf("seed %d: divergent outcomes", seed)
		}
		if err1 != nil {
			continue
		}
		if len(ts1.Tasks) != len(ts2.Tasks) || ts1.NumProcs != ts2.NumProcs {
			t.Fatalf("seed %d: divergent tasksets", seed)
		}
		for i := range ts1.Tasks {
			if ts1.Tasks[i].WCET() != ts2.Tasks[i].WCET() ||
				ts1.Tasks[i].Period != ts2.Tasks[i].Period {
				t.Fatalf("seed %d task %d: divergent parameters", seed, i)
			}
		}
	}
}

// TestAdversarialContentionPeriods: the contention shape's periods are
// near-harmonic — every period is within jitter of a power-of-two multiple
// of the shortest one.
func TestAdversarialContentionPeriods(t *testing.T) {
	a := NewAdversarial()
	checked := 0
	for seed := int64(0); seed < 40 && checked < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := a.TasksetWithShape(r, ShapeContention)
		if err != nil || len(ts.Tasks) < 2 {
			continue
		}
		checked++
		min := ts.Tasks[0].Period
		for _, task := range ts.Tasks {
			if task.Period < min {
				min = task.Period
			}
		}
		base := min - min%rt.Microsecond // strip ns jitter
		for _, task := range ts.Tasks {
			ratioed := false
			for shift := uint(0); shift <= 4; shift++ {
				mult := base << shift
				if task.Period >= mult && task.Period-mult < rt.Microsecond {
					ratioed = true
					break
				}
			}
			if !ratioed {
				t.Errorf("seed %d: period %s not near-harmonic over base %s",
					seed, rt.FormatTime(task.Period), rt.FormatTime(base))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no contention taskset with >= 2 tasks generated")
	}
}
