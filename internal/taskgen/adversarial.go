package taskgen

import (
	"fmt"
	"math"
	"math/rand"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// Shape identifies one adversarial taskset family. The families deliberately
// sit outside the paper's Sec. VII-A grid: structures the Erdős–Rényi
// recipe almost never draws (deep chains, wide fork-joins, single vertices)
// and parameterizations it excludes (near-harmonic periods, critical-section
// lengths skewed across orders of magnitude, fully-critical vertices).
type Shape int

const (
	// ShapeChain builds deep sequential chains: DAGs that are one long
	// path, maximizing L* relative to C and stressing the path-length term.
	ShapeChain Shape = iota
	// ShapeForkJoin builds wide single-stage fork-joins: maximal
	// parallelism, often heavy (C > D), stressing cluster augmentation.
	ShapeForkJoin
	// ShapeLayered builds random layered DAGs with occasional layer-skipping
	// edges: many distinct path signatures for the EP view collapse.
	ShapeLayered
	// ShapeSingleVertex builds degenerate one-vertex tasks, sometimes fully
	// critical (the entire WCET is one critical section).
	ShapeSingleVertex
	// ShapeContention builds contention-heavy mixes: small structures with
	// near-harmonic periods, high request counts and critical-section
	// lengths skewed across orders of magnitude with one hot resource.
	ShapeContention

	numShapes
)

// Shapes lists every adversarial shape in deterministic order.
func Shapes() []Shape {
	out := make([]Shape, numShapes)
	for i := range out {
		out[i] = Shape(i)
	}
	return out
}

func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeForkJoin:
		return "fork-join"
	case ShapeLayered:
		return "layered"
	case ShapeSingleVertex:
		return "single-vertex"
	case ShapeContention:
		return "contention"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// Adversarial synthesizes tasksets for the differential audit
// (internal/audit). It is deterministic given the *rand.Rand it is handed
// and reuses the Generator's assembly core (assembleTask), so every drawn
// taskset satisfies the model's plausibility constraints by construction.
//
// Sizes default small on purpose: audit tasksets are simulated over several
// (near-)hyperperiods per certified verdict, so period magnitudes stay in
// the hundreds-of-microseconds range and processor counts stay single-digit
// to keep a 2000-taskset audit within seconds of CPU time.
type Adversarial struct {
	MaxProcs int // processors drawn in [2, MaxProcs]; default 8
	MaxTasks int // tasks drawn in [1, MaxTasks]; default 5
	MaxRes   int // resources drawn in [1, MaxRes]; default 4
	Retries  int // attempts per task before giving up; default 16
}

// NewAdversarial returns an Adversarial generator with defaults.
func NewAdversarial() *Adversarial {
	return &Adversarial{MaxProcs: 8, MaxTasks: 5, MaxRes: 4, Retries: 16}
}

// Taskset draws one adversarial taskset of a random shape.
func (a *Adversarial) Taskset(r *rand.Rand) (*model.Taskset, Shape, error) {
	shape := Shape(r.Intn(int(numShapes)))
	ts, err := a.TasksetWithShape(r, shape)
	return ts, shape, err
}

// TasksetWithShape draws one adversarial taskset of the given shape.
func (a *Adversarial) TasksetWithShape(r *rand.Rand, shape Shape) (*model.Taskset, error) {
	m := 2 + r.Intn(a.MaxProcs-1)
	nr := 1 + r.Intn(a.MaxRes)
	n := 1 + r.Intn(a.MaxTasks)

	periods := a.periods(r, n, shape)
	ts := model.NewTaskset(m, nr)
	for i := 0; i < n; i++ {
		task, err := a.task(r, rt.TaskID(i), periods[i], shape, nr)
		if err != nil {
			return nil, fmt.Errorf("taskgen: adversarial %s task %d: %w", shape, i, err)
		}
		ts.Add(task)
	}
	if err := ts.Finalize(); err != nil {
		return nil, err
	}
	return ts, nil
}

// periods draws the per-task periods: near-harmonic for the contention
// shape (exact power-of-two multiples of a common base, so a few multiples
// of the longest period really are whole hyperperiods, with occasional
// sub-microsecond jitter breaking exact harmonicity), log-uniform otherwise.
func (a *Adversarial) periods(r *rand.Rand, n int, shape Shape) []rt.Time {
	out := make([]rt.Time, n)
	if shape == ShapeContention {
		base := rt.Time(100+r.Intn(400)) * rt.Microsecond
		for i := range out {
			out[i] = base << uint(r.Intn(4))
			if r.Intn(4) == 0 {
				out[i] += rt.Time(r.Intn(800)) // near-harmonic: ns-scale jitter
			}
		}
		return out
	}
	for i := range out {
		ms := LogUniform(r, 0.2, 20)
		out[i] = rt.Time(math.Round(ms * float64(rt.Millisecond)))
	}
	return out
}

// task draws one task of the shape. The WCET is drawn against the exact
// per-structure cap sum, so deep chains stay light (C <= D/2) while wide
// shapes may be heavy (C > D) and exercise multi-processor clusters.
func (a *Adversarial) task(r *rand.Rand, id rt.TaskID, period rt.Time,
	shape Shape, nr int) (*model.Task, error) {

	deadline := period
	if r.Intn(10) < 3 { // constrained deadline D < T
		deadline = period * rt.Time(60+r.Intn(40)) / 100
	}

	var lastErr error
	for attempt := 0; attempt < a.Retries; attempt++ {
		nVerts, edges := a.structure(r, shape)
		_, capSum := vertexCaps(nVerts, edges, deadline)
		if capSum <= rt.Time(nVerts) {
			lastErr = fmt.Errorf("deadline %s too short for %d vertices",
				rt.FormatTime(deadline), nVerts)
			continue
		}
		frac := 0.3 + 0.55*r.Float64()
		wcet := rt.Time(frac * float64(capSum))
		if wcet < rt.Time(nVerts) {
			wcet = rt.Time(nVerts)
		}
		draws := a.drawRequests(r, shape, nr, wcet, deadline)
		task, err := assembleTask(r, id, period, deadline, wcet, nVerts, edges, draws, nr)
		if err == nil {
			return task, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// structure draws the DAG skeleton of the shape; edges always go from lower
// to higher vertex index.
func (a *Adversarial) structure(r *rand.Rand, shape Shape) (int, []diEdge) {
	switch shape {
	case ShapeChain:
		k := 3 + r.Intn(22)
		edges := make([]diEdge, 0, k-1)
		for i := 0; i < k-1; i++ {
			edges = append(edges, diEdge{i, i + 1})
		}
		return k, edges
	case ShapeForkJoin:
		w := 2 + r.Intn(14)
		edges := make([]diEdge, 0, 2*w)
		for i := 1; i <= w; i++ {
			edges = append(edges, diEdge{0, i}, diEdge{i, w + 1})
		}
		return w + 2, edges
	case ShapeLayered:
		layers := 2 + r.Intn(4)
		width := 2 + r.Intn(4)
		n := layers * width
		var edges []diEdge
		at := func(l, i int) int { return l*width + i }
		for l := 1; l < layers; l++ {
			for i := 0; i < width; i++ {
				// At least one incoming edge keeps every chain layer-deep.
				edges = append(edges, diEdge{at(l-1, r.Intn(width)), at(l, i)})
				for j := 0; j < width; j++ {
					if r.Float64() < 0.3 {
						edges = append(edges, diEdge{at(l-1, j), at(l, i)})
					}
				}
				if l >= 2 && r.Float64() < 0.1 { // layer-skipping edge
					edges = append(edges, diEdge{at(l-2, r.Intn(width)), at(l, i)})
				}
			}
		}
		return n, edges
	case ShapeSingleVertex:
		return 1, nil
	default: // ShapeContention: small per-task structure
		switch r.Intn(3) {
		case 0:
			return 1, nil
		case 1:
			k := 2 + r.Intn(3)
			edges := make([]diEdge, 0, k-1)
			for i := 0; i < k-1; i++ {
				edges = append(edges, diEdge{i, i + 1})
			}
			return k, edges
		default:
			w := 2 + r.Intn(3)
			edges := make([]diEdge, 0, 2*w)
			for i := 1; i <= w; i++ {
				edges = append(edges, diEdge{0, i}, diEdge{i, w + 1})
			}
			return w + 2, edges
		}
	}
}

// drawRequests draws the per-resource request parameters of one task.
// Contention tasks request almost every resource, many times, with
// critical-section lengths log-uniform across two orders of magnitude and
// one hot resource (l0) three times longer still. Single-vertex tasks are
// occasionally fully critical: one request whose critical section is the
// whole WCET, exercising zero-length non-critical segments downstream.
func (a *Adversarial) drawRequests(r *rand.Rand, shape Shape, nr int,
	wcet, deadline rt.Time) []resourceDraw {

	if shape == ShapeSingleVertex && r.Intn(10) < 3 {
		if r.Intn(4) == 0 {
			return nil // no requests at all: plain federated execution
		}
		cs := wcet // fully-critical vertex
		if lim := deadline / 3; cs > lim {
			cs = lim
		}
		if cs <= 0 {
			return nil
		}
		return []resourceDraw{{q: rt.ResourceID(r.Intn(nr)), n: 1, cs: cs}}
	}

	pAccess, budgetFrac := 0.4, 0.5
	var draws []resourceDraw
	for q := 0; q < nr; q++ {
		var d resourceDraw
		d.q = rt.ResourceID(q)
		if shape == ShapeContention {
			if r.Float64() >= 0.85 {
				continue
			}
			d.n = int64(4 + r.Intn(29))
			d.cs = rt.Time(math.Round(LogUniform(r, 2, 200))) * rt.Microsecond
			if q == 0 {
				d.cs *= 3 // hot resource
			}
		} else {
			if r.Float64() >= pAccess {
				continue
			}
			d.n = int64(1 + r.Intn(6))
			d.cs = rt.Time(1+r.Intn(40)) * rt.Microsecond
		}
		draws = append(draws, d)
	}

	// Budget capping mirrors Generator.drawResources: total CS workload
	// fits within budgetFrac of the WCET and a quarter of the deadline.
	budget := rt.Time(budgetFrac * float64(wcet))
	if q := deadline / 4; q < budget {
		budget = q
	}
	total := func() rt.Time {
		var t rt.Time
		for _, d := range draws {
			t += rt.SatMul(d.n, d.cs)
		}
		return t
	}
	if tot := total(); tot > budget && tot > 0 {
		ratio := float64(budget) / float64(tot)
		for i := range draws {
			n := int64(math.Floor(float64(draws[i].n) * ratio))
			if n < 1 {
				n = 1
			}
			draws[i].n = n
		}
	}
	for total() > budget && len(draws) > 0 {
		i := r.Intn(len(draws))
		draws = append(draws[:i], draws[i+1:]...)
	}
	return draws
}
