module dpcpp

go 1.24
