// Package dpcpp is a reproduction of "DPCP-p: A Distributed Locking
// Protocol for Parallel Real-Time Tasks" (Yang, Chen, Jiang, Guan, Lei;
// DAC 2020). It provides, behind one facade:
//
//   - the parallel (DAG) task and shared-resource model of Sec. II
//     (package internal/model),
//   - the DPCP-p worst-case response-time analysis of Sec. IV in both the
//     path-enumerating (EP) and path-oblivious (EN) variants, plus the
//     SPIN-SON, LPP and FED-FP baselines of Sec. VII
//     (package internal/analysis),
//   - the task/resource partitioning Algorithms 1 and 2 of Sec. V
//     (package internal/partition),
//   - a deterministic discrete-event simulator of the DPCP-p runtime with
//     protocol invariant checkers, including a Lemma 1 ledger
//     (package internal/sim),
//   - the RandFixedSum/Erdős–Rényi taskset synthesis of Sec. VII-A
//     (package internal/taskgen), and
//   - the experiment harness regenerating Fig. 2 and Tables 2-3
//     (package internal/experiments).
//
// # Quick start
//
//	scen, _ := dpcpp.Fig2Scenario("2a")
//	g := dpcpp.NewGenerator(scen)
//	ts, _ := g.Taskset(rand.New(rand.NewSource(1)), 8.0)
//	res := dpcpp.Test(dpcpp.DPCPpEP, ts, dpcpp.Options{})
//	fmt.Println(res.Schedulable)
//
// See examples/ for runnable programs and cmd/schedtest for the full
// evaluation harness.
package dpcpp
