// Package dpcpp is a reproduction of "DPCP-p: A Distributed Locking
// Protocol for Parallel Real-Time Tasks" (Yang, Chen, Jiang, Guan, Lei;
// DAC 2020). It provides, behind one facade:
//
//   - the parallel (DAG) task and shared-resource model of Sec. II
//     (package internal/model),
//   - the DPCP-p worst-case response-time analysis of Sec. IV in both the
//     path-enumerating (EP) and path-oblivious (EN) variants, plus the
//     SPIN-SON, LPP and FED-FP baselines of Sec. VII
//     (package internal/analysis),
//   - the task/resource partitioning Algorithms 1 and 2 of Sec. V
//     (package internal/partition),
//   - a deterministic discrete-event simulator of the DPCP-p runtime with
//     protocol invariant checkers, including a Lemma 1 ledger
//     (package internal/sim),
//   - the RandFixedSum/Erdős–Rényi taskset synthesis of Sec. VII-A plus
//     adversarial generators far outside the paper's grid
//     (package internal/taskgen),
//   - the experiment harness regenerating Fig. 2 and Tables 2-3
//     (package internal/experiments), and
//   - a differential soundness audit fuzzing adversarial tasksets and
//     cross-checking every analysis against the simulator
//     (package internal/audit), and
//   - a long-running analysis service exposing all of it over an HTTP
//     JSON API with content-addressed result caching, request coalescing,
//     and durable asynchronous sweep jobs backed by a persistent result
//     store (packages internal/server and internal/store, daemon
//     cmd/schedd).
//
// # Quick start
//
//	scen, _ := dpcpp.Fig2Scenario("2a")
//	g := dpcpp.NewGenerator(scen)
//	ts, _ := g.Taskset(rand.New(rand.NewSource(1)), 8.0)
//	res := dpcpp.Test(dpcpp.DPCPpEP, ts, dpcpp.Options{})
//	fmt.Println(res.Schedulable)
//
// See examples/ for runnable programs and cmd/schedtest for the full
// evaluation harness.
//
// # The path-view engine
//
// The EP analysis nominally evaluates Theorem 1 once per complete DAG path,
// and path counts grow exponentially with parallel structure. The engine
// instead evaluates once per path *view*: paths are collapsed by their
// per-resource request-vector signature N^lambda_{i,q} during a dynamic
// program over the DAG (model.Task.EnumerateViews), because every Theorem 1
// term except L(lambda) and the on-path non-critical WCET depends on the
// path only through that signature, and the bound is monotone
// non-decreasing in those two coupled quantities for a fixed signature
// (L = C'(lambda) + sum_q N^lambda_{i,q} L_{i,q}, and the 1/m_i interference
// division can never win back more than the path-length increase). Each
// view therefore carries the per-signature maxima, making the collapse
// exact — verdicts and WCRTs are bit-identical to per-path evaluation — while
// a 2^14-path DAG whose paths share one signature costs one evaluation.
// On top of the collapse, the analyzer memoizes per-task views across the
// partitioning loop's rounds and the Lemma 2 W fixed points across views
// (keyed by processor and recurrence base), and the experiment harness
// drains entire scenario grids through one shared work-conserving pool
// (experiments.RunGrid) with scheduling-independent deterministic seeding.
//
// # The differential audit
//
// Every response-time bound in the repository is a soundness claim:
// "schedulable" must mean no execution misses a deadline. The audit
// subsystem (internal/audit, CLI `schedtest -audit`) continuously attacks
// that claim with adversarial tasksets the paper's grid never draws — deep
// chains, wide fork-joins, random layered DAGs, degenerate single-vertex
// tasks, and contention-heavy mixes with near-harmonic periods and skewed
// critical sections. For every certified (taskset, method) verdict it
// replays the taskset in the simulator under the method's runtime protocol
// across CS placements and release offsets, and additionally checks that
// EP never exceeds EN on one identical partition and that every bound is
// monotone under WCET inflation. A violating taskset is shrunk (drop tasks
// → drop vertices → halve WCETs → halve request counts) to a minimal JSON
// reproduction and kept as a permanent regression fixture. The audit
// already earned its keep: it caught two LPP runtime-protocol bugs
// (dispatch-time-only boosting, and semaphore acquisition from the ready
// queue) as certified-taskset deadline misses; the shrunken counterexample
// lives in internal/audit/testdata/lpp-dispatch-time-locking.json.
//
// # The analysis service
//
// Test(taskset, method) is a pure deterministic function, which makes the
// engine ideal to serve: identical requests are identical work. The
// service stack keeps a strict engine → pool → server layering.
// internal/analysis stays the only source of verdicts;
// experiments.ParallelFor stays the only scheduling primitive (batch
// fan-out and streaming grid sweeps drain through it exactly like the CLI
// grids and the audit); internal/server adds only service concerns on
// top. Results are cached in a sharded LRU addressed by
// model.Taskset.Hash — a SHA-256 over a canonical serialization (tasks
// sorted by ID, per-vertex requests sorted by resource, edges sorted and
// de-duplicated, unused CS lengths and names dropped) — joined with every
// option that can change a verdict (method, path cap, placement,
// explain). Two byte-different but semantically identical tasksets
// therefore share cache entries, N concurrent identical misses coalesce
// onto exactly one analysis (singleflight), and admission is bounded:
// when the queue is transiently full a request is rejected with 429 +
// Retry-After instead of queuing without bound (and one that could never
// fit gets a non-retryable 400). The cache-hit path does
// no analysis work at all, turning millisecond analyses into microsecond
// lookups. cmd/schedd wraps the handler in a daemon with graceful
// shutdown; the streamed GET /v1/grid endpoint derives every sample seed
// through experiments.SampleSeed, so a streamed acceptance curve is
// bit-identical to `schedtest -fig` with the same seed.
//
// # Incremental delta analysis
//
// POST /v1/analyze/delta serves what-if queries — one patched task per
// request — without re-deriving the unchanged remainder of the taskset.
// model.ApplyPatch turns (base, Patch) into a finalized taskset plus a
// precise changed-task set, and analysis.Delta retains a completed EP/EN
// run's internals: per-task path views (or their collapse plans), Lemma 2
// epsilon-memo rows keyed by (processor, recurrence base), final fixed-point
// iterates, and a dependency map recording which tasks' interference terms
// read which placement rows. An incremental run replays partitioning; for
// every round whose assignment matches the retained final partition it
// re-derives only tasks the dependency map marks as affected, warm-starts
// rta.FixPointBatch from retained iterates for the rest, and replays
// retained WCRTs for tasks with no changed inputs. Verdicts and WCRTs are
// bit-identical to a full re-analysis — enforced by a differential suite
// and the audit's randomized patch-chain leg.
//
// Ownership and invalidation rules:
//
//   - A *analysis.Delta is owned by the server's bounded LRU of retained
//     states, keyed by (base hash, method, options) — the same canonical
//     key space as the result cache. It is immutable after construction:
//     Apply/ApplyTo never mutate the receiver, they return a fresh state
//     for the patched taskset, which the server retains under the patched
//     hash so edit chains stay incremental.
//   - Invalidation is structural, not temporal. Any partitioning round
//     whose assignment diverges from the retained final partition — a task
//     or resource lands elsewhere, typically after add/remove-task or a
//     large timing edit — invalidates the retained rows for that round and
//     the run falls back to full analysis for it (DeltaStats reports
//     MatchedRounds < Rounds). Request-count increases invalidate the
//     warm-start for the affected task (its bound need not be monotone in
//     that edit), and an unschedulable result retains no state at all:
//     there is no final partition to key the dependency map on.
//   - LRU eviction degrades performance, never correctness: a query whose
//     base state was evicted is answered by re-establishing the base with
//     a full analysis (counted in delta_fallbacks) when the request
//     carries base_taskset, or rejected with a structured 400 telling the
//     client to re-send it when it carries only the hash.
//
// # Sweep jobs and the persistent store
//
// The paper's headline artifact is whole acceptance-ratio campaigns, so
// the service runs them as durable background jobs rather than one open
// connection per curve. POST /v1/sweeps accepts any subset of the Fig. 2
// subplots and the 216-scenario grid and returns a job ID immediately; a
// FIFO runner drains each job's (scenario, point, sample) fan-out through
// experiments.ScenarioSweep on the shared pool, bounded by the same
// worker slots interactive requests use. GET /v1/sweeps/{id} reports
// per-scenario progress in completed points; /results serves the curves.
//
// Durability is layered under both the cache and the jobs
// (internal/store): with a store directory configured, every analysis
// result writes through to an on-disk content-addressed store keyed by
// the same canonical hash — restarts keep the cache warm — and sweep jobs
// checkpoint each completed utilization point to an atomically-written
// JSON file. A restarted daemon reloads the checkpoints and resumes
// unfinished sweeps, re-running only incomplete points; sample seeds are
// pure functions of (seed, scenario, point, sample), so a resumed sweep's
// curves are byte-identical to an uninterrupted run's.
//
// # Scratch arenas and memory ownership
//
// Analysis at sweep scale is allocation-bound, so the hot path computes
// through reusable scratch memory with three rules:
//
//   - A Scratch (NewScratch, threaded via TestWith) serves one goroutine
//     at a time. The experiments pool and the server keep one per worker;
//     ad-hoc callers may share one across sequential analyses of any
//     number of tasksets.
//   - Results returned by Test/TestWith are always scratch-independent:
//     they own their memory and may be retained while the scratch moves
//     on. Internal borrowers are scoped instead — an analyzer's WCRTs map
//     is valid until its next WCRTs call, model.EnumerateViewsScratch's
//     views until the next call on the same ViewScratch — and every such
//     lifetime is documented at the API returning it.
//   - Steady state allocates nothing: arenas grow to a high-water mark
//     and are reset, not freed, between tasks and tasksets. This is
//     pinned by AllocsPerRun tests and by the committed benchmark
//     snapshots (BENCH_<pr>.json) that the CI bench gate enforces; see
//     the README's Performance section and cmd/benchgate.
//
// # Robustness and the fault model
//
// The service assumes requests can outlive their clients and disks can
// fail mid-write, and treats both as normal operation. Deadlines and
// cancellation flow as context.Context from every handler through the
// engine: a canceled request is abandoned before it takes a worker slot,
// batch fan-outs stop admitting work once the client is gone, and a
// coalesced waiter detaches without cancelling the computation other
// requests share (the result still lands in the cache, so the client's
// retry is a hit). Timed-out requests get a structured 503 rather than a
// hung connection.
//
// The fault model for storage is crash/EIO: a write may fail before any
// byte lands, or the process may die after data is written but before
// the rename commits it (a torn write) — never silent corruption of
// committed bytes. Store writes are atomic (temp file + rename, with
// opt-in fsync of file and parent directory for checkpoints), so a torn
// write leaves the previous committed state intact and resumed sweeps
// stay byte-identical. All store I/O sits behind a circuit breaker:
// consecutive errors open it and the daemon degrades to compute-only
// service — nothing persists, everything still answers — probing the
// disk periodically and resuming write-through when it heals. State
// corrupted outside the protocol (a truncated checkpoint) fails exactly
// the damaged job, never startup. These claims are executable:
// store-level fault hooks inject EIO, ENOSPC-style and torn-write
// failures, and a chaos suite drives randomized kill/restart cycles
// against them in CI, asserting no panics, byte-identical recovered
// curves, and corruption isolation.
package dpcpp
