// Quickstart: synthesize a parallel taskset the way the paper's evaluation
// does, run all five schedulability analyses on it, and validate the
// DPCP-p verdict by simulating the runtime protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpcpp"
)

func main() {
	// A Fig. 2(a)-style scenario: 16 processors, 4-8 shared resources,
	// average task utilization 1.5, each task uses each resource with
	// probability 0.5.
	scen, err := dpcpp.Fig2Scenario("2a")
	if err != nil {
		log.Fatal(err)
	}
	g := dpcpp.NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(42)), 6.0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("taskset: %d tasks, %d resources, %d processors, total U = %.2f\n",
		len(ts.Tasks), ts.NumResources, ts.NumProcs, ts.TotalUtilization())
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  task %d: |V|=%d, C=%s, T=D=%s, U=%.2f, L*=%s\n",
			t.ID, len(t.Vertices), fmtUS(t.WCET()), fmtUS(t.Period),
			t.Utilization(), fmtUS(t.LongestPath()))
	}

	fmt.Println("\nschedulability verdicts:")
	var dpcp dpcpp.Result
	for _, m := range dpcpp.Methods() {
		res := dpcpp.Test(m, ts, dpcpp.Options{})
		fmt.Printf("  %-10s %v\n", m, res.Schedulable)
		if m == dpcpp.DPCPpEP {
			dpcp = res
		}
	}

	if !dpcp.Schedulable {
		fmt.Println("\nDPCP-p rejected the set; nothing to simulate")
		return
	}

	fmt.Println("\nDPCP-p partition and bounds:")
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  task %d: cluster of %d processors, R = %s (D = %s)\n",
			t.ID, dpcp.Partition.NumProcs(t.ID), fmtUS(dpcp.WCRT[t.ID]), fmtUS(t.Deadline))
	}

	// Validate: simulate three times the longest period and compare.
	var horizon dpcpp.Time
	for _, t := range ts.Tasks {
		if t.Period > horizon {
			horizon = t.Period
		}
	}
	s, err := dpcpp.NewSim(ts, dpcp.Partition, dpcpp.SimConfig{Horizon: 3 * horizon})
	if err != nil {
		log.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation: %d jobs, %d requests, %d deadline misses, violations: %d\n",
		m.Jobs, m.Requests, m.DeadlineMisses, len(s.Violations()))
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  task %d: observed %s <= analyzed %s\n",
			t.ID, fmtUS(m.MaxResponse[t.ID]), fmtUS(dpcp.WCRT[t.ID]))
	}
}

func fmtUS(t dpcpp.Time) string {
	return fmt.Sprintf("%.0fus", float64(t)/float64(dpcpp.Microsecond))
}
