// Campaign: a compact schedulability study using the public API — sweeps
// one scenario's utilization axis, prints the acceptance-ratio table, the
// pairwise dominance verdicts, and emits the curve as CSV on stdout.
package main

import (
	"fmt"
	"log"
	"os"

	"dpcpp"
	"dpcpp/internal/experiments"
)

func main() {
	scen, err := dpcpp.Fig2Scenario("2b") // the heavy-contention subplot
	if err != nil {
		log.Fatal(err)
	}
	c := dpcpp.Campaign{
		Scenario:         scen,
		TasksetsPerPoint: 10,
		Seed:             7,
	}
	curve, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(dpcpp.FormatCurve(curve))

	fmt.Println("\npairwise dominance in this scenario:")
	for _, a := range curve.Methods {
		for _, b := range curve.Methods {
			if a == b {
				continue
			}
			if experiments.Dominates(curve, a, b) {
				fmt.Printf("  %s dominates %s\n", a, b)
			}
		}
	}

	fmt.Println("\ncurve as CSV:")
	if err := experiments.WriteCurveCSV(os.Stdout, curve); err != nil {
		log.Fatal(err)
	}
}
