// Autonomous-driving pipeline: the kind of workload the paper's
// introduction motivates — six parallel sensor/fusion DAG tasks on 16
// cores, sharing four mutually-exclusive stores (calibration table, map
// tile cache, object store, diagnostics ring). The contention level is
// chosen so that the distributed protocol is what makes the set feasible:
// DPCP-p-EP schedules it while the local-execution protocols (SPIN-SON,
// LPP) and the path-oblivious DPCP-p-EN all reject it.
package main

import (
	"fmt"
	"log"

	"dpcpp"
)

const (
	us = dpcpp.Microsecond
	ms = dpcpp.Millisecond
)

// Shared resources.
var resourceNames = []string{"calib-table", "map-cache", "object-store", "diag-ring"}

// pipeline builds one fork-join sensor task: decode -> 6 parallel workers
// -> fuse. Worker b locks store (taskIdx+b) mod 4 three times for 100us
// (e.g. reading calibration coefficients per tile).
func pipeline(id dpcpp.TaskID, period dpcpp.Time, name string) *dpcpp.Task {
	t := dpcpp.NewTask(id, period, period)
	t.Name = name
	decode := t.AddVertex(1 * ms)
	fuse := t.AddVertex(1 * ms)
	for b := 0; b < 6; b++ {
		w := t.AddVertex(4 * ms)
		t.AddEdge(decode, w)
		t.AddEdge(w, fuse)
		q := dpcpp.ResourceID((int(id) + b) % 4)
		t.AddRequest(w, q, 3, 100*us)
	}
	return t
}

func main() {
	ts := dpcpp.NewTaskset(16, 4)
	names := []string{"camera-front", "camera-rear", "lidar", "radar", "fusion", "prediction"}
	for i, name := range names {
		ts.Add(pipeline(dpcpp.TaskID(i), dpcpp.Time(20+2*i)*ms, name))
	}
	if err := ts.Finalize(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("autonomous stack: %d pipelines on %d cores, total U = %.2f\n",
		len(ts.Tasks), ts.NumProcs, ts.TotalUtilization())
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  %-13s T=D=%2dms  C=%2dms  U=%.2f  L*=%dms\n",
			t.Name, t.Period/ms, t.WCET()/ms, t.Utilization(), t.LongestPath()/ms)
	}

	fmt.Println("\nschedulability verdicts (the paper's story in one taskset):")
	var dpcp dpcpp.Result
	for _, m := range dpcpp.Methods() {
		res := dpcpp.Test(m, ts, dpcpp.Options{})
		note := ""
		switch m {
		case dpcpp.DPCPpEP:
			dpcp = res
			note = "remote agents + per-path analysis"
		case dpcpp.DPCPpEN:
			note = "path-oblivious request bounds are too pessimistic here"
		case dpcpp.SPIN:
			note = "busy-waiting burns the workers' cores"
		case dpcpp.LPP:
			note = "suspension lets whole fork-join stages pile into the FIFO queues"
		case dpcpp.FEDFP:
			note = "hypothetical: resources ignored"
		}
		fmt.Printf("  %-10s %-6v %s\n", m, res.Schedulable, note)
	}
	if !dpcp.Schedulable {
		log.Fatal("expected DPCP-p-EP to schedule this set")
	}

	fmt.Println("\nDPCP-p partition (Algorithm 1 + WFD placement):")
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  %-13s cluster %v, R = %.1fms of D = %dms\n",
			t.Name, dpcp.Partition.Procs(t.ID), float64(dpcp.WCRT[t.ID])/float64(ms), t.Deadline/ms)
	}
	for q := 0; q < ts.NumResources; q++ {
		fmt.Printf("  %-13s served by agents on processor %d\n",
			resourceNames[q], dpcp.Partition.ResourceProc(dpcpp.ResourceID(q)))
	}

	// Validate the verdict by running the protocol.
	s, err := dpcpp.NewSim(ts, dpcp.Partition, dpcpp.SimConfig{Horizon: 90 * ms})
	if err != nil {
		log.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 90ms: %d jobs, %d agent requests, %d deadline misses, %d invariant violations\n",
		m.Jobs, m.Requests, m.DeadlineMisses, len(s.Violations()))
	fmt.Printf("max lower-priority blockers per request: %d (Lemma 1 bound: 1)\n", m.MaxLowPrioBlockers)
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  %-13s observed %.1fms <= bound %.1fms\n",
			t.Name, float64(m.MaxResponse[t.ID])/float64(ms), float64(dpcp.WCRT[t.ID])/float64(ms))
	}
}
