// Figure 1: reconstructs the paper's running example — two DAG tasks on
// four processors, a global resource served by agents on processor 2 and a
// local resource inside task i — simulates it under DPCP-p, and renders
// the schedule as an ASCII Gantt chart (the textual Fig. 1(b)).
package main

import (
	"fmt"
	"log"

	"dpcpp"
)

const us = dpcpp.Microsecond

func main() {
	ts := dpcpp.NewTaskset(4, 2)

	// G_i of Fig. 1(a): WCETs 2,3,2,2,4,2,2,2; longest path
	// (v1,v5,v7,v8) = 10. v2 uses the global resource l1 (here l0); v3
	// and v4 share the local resource l2 (here l1).
	gi := dpcpp.NewTask(0, 40*us, 40*us)
	for _, c := range []dpcpp.Time{2, 3, 2, 2, 4, 2, 2, 2} {
		gi.AddVertex(c * us)
	}
	for _, e := range [][2]dpcpp.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {6, 7}} {
		gi.AddEdge(e[0], e[1])
	}
	gi.AddRequest(1, 0, 1, 2*us)
	gi.AddRequest(2, 1, 1, 2*us)
	gi.AddRequest(3, 1, 1, 2*us)
	ts.Add(gi)

	// G_j: WCETs 1,3,3,4,4,1. v3 uses the global resource.
	gj := dpcpp.NewTask(1, 30*us, 30*us)
	for _, c := range []dpcpp.Time{1, 3, 3, 4, 4, 1} {
		gj.AddVertex(c * us)
	}
	for _, e := range [][2]dpcpp.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 5}, {4, 5}} {
		gj.AddEdge(e[0], e[1])
	}
	gj.AddRequest(2, 0, 1, 2*us)
	ts.Add(gj)

	if err := ts.Finalize(); err != nil {
		log.Fatal(err)
	}

	// Let Algorithm 1 partition tasks and resources, then analyze.
	res := dpcpp.Test(dpcpp.DPCPpEP, ts, dpcpp.Options{})
	fmt.Printf("DPCP-p-EP verdict: schedulable=%v\n", res.Schedulable)
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  task %d: cluster %v, R = %s\n",
			t.ID, res.Partition.Procs(t.ID), fmt.Sprintf("%dus", res.WCRT[t.ID]/us))
	}
	fmt.Printf("  global resource l0 served on processor %d\n", res.Partition.ResourceProc(0))

	s, err := dpcpp.NewSim(ts, res.Partition, dpcpp.SimConfig{
		Horizon:      30 * us,
		Placement:    dpcpp.FrontCS, // v_{i,2} suspends the moment it starts, as in the paper
		CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated responses: G_i = %dus (L* = 10us), G_j = %dus (L* = 8us)\n",
		m.MaxResponse[0]/us, m.MaxResponse[1]/us)
	fmt.Printf("global requests served: %d; lower-priority blockers per request <= %d (Lemma 1)\n",
		m.Requests, m.MaxLowPrioBlockers)
	if v := s.Violations(); len(v) > 0 {
		fmt.Println("violations:", v)
	}
	fmt.Println()
	fmt.Print(dpcpp.Gantt(s.Trace(), 4, 20*us, us))
}
