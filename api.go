package dpcpp

import (
	"math/rand"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/audit"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/server"
	"dpcpp/internal/sim"
	"dpcpp/internal/store"
	"dpcpp/internal/taskgen"
)

// Core model types.
type (
	// Time is a duration or instant in nanoseconds.
	Time = rt.Time
	// Priority is a base priority; larger means higher.
	Priority = rt.Priority
	// TaskID identifies a task.
	TaskID = rt.TaskID
	// VertexID identifies a vertex within a task's DAG.
	VertexID = rt.VertexID
	// ResourceID identifies a shared resource.
	ResourceID = rt.ResourceID
	// ProcID identifies a processor.
	ProcID = rt.ProcID
	// Task is a sporadic DAG task.
	Task = model.Task
	// Taskset is a set of DAG tasks sharing resources and processors.
	Taskset = model.Taskset
	// Path is one complete path through a task's DAG.
	Path = model.Path
	// PathView is the signature-collapsed summary of all complete paths
	// sharing one per-resource request vector; the EP analysis consumes
	// views, not concrete paths.
	PathView = model.PathView
	// ViewScratch is the reusable working memory of
	// Task.EnumerateViewsScratch; see its ownership contract there.
	ViewScratch = model.ViewScratch
)

// Time units re-exported for fixture building.
const (
	Nanosecond  = rt.Nanosecond
	Microsecond = rt.Microsecond
	Millisecond = rt.Millisecond
	Second      = rt.Second
)

// NewTaskset returns an empty taskset for m processors and nr resources.
func NewTaskset(m, nr int) *Taskset { return model.NewTaskset(m, nr) }

// NewTask returns an empty task with the given identity and timing.
func NewTask(id TaskID, period, deadline Time) *Task { return model.NewTask(id, period, deadline) }

// Analysis methods and entry points.
type (
	// Method selects a schedulability analysis.
	Method = analysis.Method
	// Options tunes an analysis run.
	Options = analysis.Options
	// Result is the outcome of partitioning + analysis.
	Result = partition.Result
	// Partition maps tasks to clusters and global resources to processors.
	Partition = partition.Partition
)

// The five methods the paper compares.
const (
	DPCPpEP = analysis.DPCPpEP
	DPCPpEN = analysis.DPCPpEN
	SPIN    = analysis.SPIN
	LPP     = analysis.LPP
	FEDFP   = analysis.FEDFP
)

// Methods lists every implemented method in the paper's comparison order.
func Methods() []Method { return analysis.Methods() }

// Test runs the full schedulability pipeline (partitioning + analysis).
func Test(m Method, ts *Taskset, opts Options) Result { return analysis.Test(m, ts, opts) }

// Scratch is the reusable working memory of the DPCP-p analyses; recycling
// one across TestWith calls drives steady-state analysis allocations to
// zero. One goroutine at a time per scratch.
type Scratch = analysis.Scratch

// NewScratch returns an empty analysis scratch for TestWith.
func NewScratch() *Scratch { return analysis.NewScratch() }

// TestWith is Test computing through a caller-recycled scratch (nil falls
// back to a private one); the Result never references the scratch.
func TestWith(sc *Scratch, m Method, ts *Taskset, opts Options) Result {
	return analysis.TestWith(sc, m, ts, opts)
}

// Schedulable returns only the verdict of Test.
func Schedulable(m Method, ts *Taskset, opts Options) bool {
	return analysis.Schedulable(m, ts, opts)
}

// Incremental what-if analysis: patches and retained delta state.
type (
	// Patch is a canonical edit script against a finalized taskset.
	Patch = model.Patch
	// PatchOp is one edit; see the Op* constants in internal/model.
	PatchOp = model.PatchOp
	// PatchError reports the first structurally invalid op in a patch.
	PatchError = model.PatchError
	// PatchDelta is the precise changed-task set produced by ApplyPatch.
	PatchDelta = model.PatchDelta
	// Delta is the retained state of a completed EP/EN analysis; Apply
	// answers patched what-if queries incrementally. See the package
	// documentation for ownership and invalidation rules.
	Delta = analysis.Delta
	// DeltaStats reports what an incremental run reused.
	DeltaStats = analysis.DeltaStats
)

// ApplyPatch applies p to a finalized taskset, returning the patched
// finalized taskset (the receiver is never mutated). The returned
// PatchDelta lists precisely which tasks changed and how.
func ApplyPatch(ts *Taskset, p Patch) (*Taskset, *PatchDelta, error) {
	return model.ApplyPatch(ts, p)
}

// NewDelta runs a full analysis and retains its internals for later
// incremental Apply calls. The state is nil (with a valid Result) for
// methods without an incremental form and for unschedulable results.
func NewDelta(sc *Scratch, m Method, ts *Taskset, opts Options) (Result, *Delta) {
	return analysis.NewDelta(sc, m, ts, opts)
}

// Taskset synthesis (Sec. VII-A).
type (
	// Scenario is one experimental configuration.
	Scenario = taskgen.Scenario
	// Generator synthesizes tasksets for a scenario.
	Generator = taskgen.Generator
	// IntRange is an inclusive integer range.
	IntRange = taskgen.IntRange
	// TimeRange is an inclusive duration range.
	TimeRange = taskgen.TimeRange
)

// NewGenerator returns a Generator with the paper's defaults.
func NewGenerator(s Scenario) *Generator { return taskgen.NewGenerator(s) }

// Grid returns the paper's full 216-scenario grid.
func Grid() []Scenario { return taskgen.Grid() }

// Fig2Scenario returns the configuration of one Fig. 2 subplot
// ("2a".."2d").
func Fig2Scenario(sub string) (Scenario, error) { return taskgen.Fig2Scenario(sub) }

// UtilizationPoints returns the paper's utilization sweep for m processors.
func UtilizationPoints(m int) []float64 { return taskgen.UtilizationPoints(m) }

// RandFixedSum draws n values in [lo,hi] summing to total (Stafford's
// algorithm, as recommended by Emberson et al.).
func RandFixedSum(r *rand.Rand, n int, total, lo, hi float64) ([]float64, error) {
	return taskgen.RandFixedSum(r, n, total, lo, hi)
}

// Simulation.
type (
	// SimConfig tunes a simulation run.
	SimConfig = sim.Config
	// Sim is a discrete-event simulation instance.
	Sim = sim.Sim
	// SimMetrics aggregates a simulation's outcome.
	SimMetrics = sim.Metrics
	// Span is one execution interval on a processor.
	Span = sim.Span
	// CSPlacement controls critical-section placement inside vertices.
	CSPlacement = sim.CSPlacement
)

// Critical-section placements.
const (
	SpreadCS = sim.SpreadCS
	FrontCS  = sim.FrontCS
	BackCS   = sim.BackCS
)

// Protocol selects the simulated runtime protocol.
type Protocol = sim.Protocol

// Runtime protocols: the paper's DPCP-p (remote agents + ceiling), and
// the two local-execution baselines.
const (
	ProtocolDPCPp = sim.ProtocolDPCPp
	ProtocolSpin  = sim.ProtocolSpin
	ProtocolLPP   = sim.ProtocolLPP
)

// Breakdown decomposes a DPCP-p WCRT bound into Theorem 1's terms.
type Breakdown = analysis.Breakdown

// Explain returns per-task breakdowns of the DPCP-p-EP bound under the
// partition, in descending priority order.
func Explain(ts *Taskset, p *Partition, pathCap int) []Breakdown {
	if pathCap <= 0 {
		pathCap = analysis.DefaultPathCap
	}
	return analysis.NewDPCPp(ts, pathCap, false).Explain(p)
}

// NewSim builds a simulator for the taskset under the partition.
func NewSim(ts *Taskset, p *Partition, cfg SimConfig) (*Sim, error) {
	return sim.New(ts, p, cfg)
}

// Gantt renders a trace as an ASCII chart.
func Gantt(spans []Span, numProcs int, horizon, bucket Time) string {
	return sim.Gantt(spans, numProcs, horizon, bucket)
}

// Experiments (Sec. VII).
type (
	// Campaign configures one acceptance-ratio sweep.
	Campaign = experiments.Campaign
	// Curve is the acceptance-ratio data of one scenario.
	Curve = experiments.Curve
	// GridResult aggregates Tables 2 and 3.
	GridResult = experiments.GridResult
)

// RunGrid executes campaigns for a list of scenarios on one shared,
// grid-level worker pool.
func RunGrid(template Campaign, scenarios []Scenario) ([]*Curve, error) {
	return experiments.RunGrid(template, scenarios)
}

// RunGridProgress is RunGrid with a per-scenario completion callback; see
// experiments.RunGridProgress for the callback's concurrency contract.
func RunGridProgress(template Campaign, scenarios []Scenario,
	onCurve func(i int, c *Curve)) ([]*Curve, error) {
	return experiments.RunGridProgress(template, scenarios, onCurve)
}

// Aggregate counts pairwise dominance/outperformance across curves.
func Aggregate(curves []*Curve, methods []Method) *GridResult {
	return experiments.Aggregate(curves, methods)
}

// FormatCurve renders a curve as a text table.
func FormatCurve(c *Curve) string { return experiments.FormatCurve(c) }

// FormatGrid renders Tables 2 and 3.
func FormatGrid(g *GridResult) string { return experiments.FormatGrid(g) }

// Differential soundness audit (internal/audit).
type (
	// AuditConfig tunes one audit run.
	AuditConfig = audit.Config
	// AuditReport aggregates an audit run's outcome.
	AuditReport = audit.Report
	// AuditViolation is one observed invariant breach.
	AuditViolation = audit.Violation
	// AdversarialGenerator synthesizes tasksets outside the paper's grid.
	AdversarialGenerator = taskgen.Adversarial
	// Shape identifies one adversarial taskset family.
	Shape = taskgen.Shape
)

// Adversarial shapes.
const (
	ShapeChain        = taskgen.ShapeChain
	ShapeForkJoin     = taskgen.ShapeForkJoin
	ShapeLayered      = taskgen.ShapeLayered
	ShapeSingleVertex = taskgen.ShapeSingleVertex
	ShapeContention   = taskgen.ShapeContention
)

// NewAdversarial returns the default adversarial taskset generator.
func NewAdversarial() *AdversarialGenerator { return taskgen.NewAdversarial() }

// Audit fuzzes adversarial tasksets and cross-checks every analysis against
// the simulator and against each other; see internal/audit for the
// invariants. Violations come back in the report, each with a shrunken
// reproduction serialized into cfg.FixtureDir.
func Audit(cfg AuditConfig) (*AuditReport, error) { return audit.Run(cfg) }

// ReplayAuditFixture re-runs the full differential audit on a serialized
// taskset (a shrunken counterexample or any cmd/taskgen output).
func ReplayAuditFixture(cfg AuditConfig, path string) ([]AuditViolation, error) {
	return audit.ReplayFixture(cfg, path)
}

// Schedulability-as-a-service (internal/server, cmd/schedd).
type (
	// TasksetHash is the canonical content address of a taskset
	// (Taskset.Hash): a SHA-256 digest of its canonical serialization,
	// stable across JSON round trips and insensitive to task order,
	// names, duplicate edges and unused CS lengths.
	TasksetHash = model.Hash
	// ServerConfig tunes the analysis service.
	ServerConfig = server.Config
	// AnalysisServer is the http.Handler exposing the analysis service:
	// POST /v1/analyze, POST /v1/analyze/batch, GET /v1/grid (NDJSON
	// stream), POST/GET /v1/sweeps (asynchronous sweep jobs),
	// GET /v1/metrics, GET /healthz.
	AnalysisServer = server.Server
	// ServerMetrics is the service's cache/coalescing/admission/store
	// counters.
	ServerMetrics = server.Metrics
	// ResultStore is the on-disk content-addressed result store backing
	// the server's in-memory cache across restarts (ServerConfig.StoreDir).
	ResultStore = store.Store
	// StoreBreaker is the circuit breaker guarding all store I/O: after a
	// threshold of consecutive errors the service stops touching the disk
	// and serves from compute alone, probing periodically until it heals.
	// Its state is surfaced via /healthz and ServerMetrics.StoreState.
	StoreBreaker = store.Breaker
	// StoreHooks are fault-injection points (read/write/rename) for
	// exercising the service's crash and I/O-error paths in tests.
	StoreHooks = store.Hooks
)

// ErrTornWrite, returned from a StoreHooks.BeforeRename hook, simulates a
// torn write: data written and success reported, but the rename that would
// commit it never happens — the crash-after-ack case.
var ErrTornWrite = store.ErrTornWrite

// NewStoreBreaker returns a closed circuit breaker that opens after
// threshold consecutive errors and admits one probe per probe interval.
func NewStoreBreaker(threshold int, probe time.Duration) *StoreBreaker {
	return store.NewBreaker(threshold, probe)
}

// NewServer builds the analysis service: content-addressed result caching
// keyed by TasksetHash (optionally persisted across restarts via
// cfg.StoreDir), singleflight coalescing of concurrent identical requests,
// bounded admission over the shared worker pool, and durable asynchronous
// sweep jobs. Call Close on the returned server during shutdown to
// checkpoint sweep progress. See cmd/schedd for the daemon wrapping it.
func NewServer(cfg ServerConfig) (*AnalysisServer, error) { return server.New(cfg) }

// OpenResultStore opens (creating if needed) a persistent result store
// rooted at dir, the same layout ServerConfig.StoreDir uses.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }
